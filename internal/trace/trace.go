// Package trace records the sequence of block addresses an algorithm
// presents to the storage server, which is exactly the adversary's view in
// the paper's model (§1): Bob sees the sequence and location of all of
// Alice's disk accesses but not their contents.
//
// The obliviousness tests fix the random tape, vary the input data, and
// assert the traces are identical; Recorder keeps a running 64-bit hash so
// that holds even for traces far too long to store.
package trace

import "fmt"

// Kind distinguishes read accesses from write accesses in the trace.
type Kind byte

const (
	// Read is a block read access.
	Read Kind = 'R'
	// Write is a block write access.
	Write Kind = 'W'
)

// Op is a single access in the adversary's view: an operation kind and a
// block address.
type Op struct {
	Kind Kind
	Addr int64
}

// String renders the op as e.g. "R@42".
func (o Op) String() string { return fmt.Sprintf("%c@%d", o.Kind, o.Addr) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Recorder accumulates an access trace. The zero value records nothing and
// is safe to use; call Enable (optionally with a retention cap) to start
// recording. A running FNV-1a hash summarises arbitrarily long traces.
type Recorder struct {
	enabled bool
	hash    uint64
	n       int64
	keep    int // how many ops to retain verbatim; 0 = none
	ops     []Op
}

// NewRecorder returns an enabled recorder that retains up to keep ops
// verbatim (keep <= 0 retains none; the hash and count are always kept).
func NewRecorder(keep int) *Recorder {
	r := &Recorder{}
	r.Enable(keep)
	return r
}

// Enable starts recording, retaining up to keep ops verbatim.
func (r *Recorder) Enable(keep int) {
	r.enabled = true
	r.hash = fnvOffset
	r.n = 0
	r.keep = keep
	r.ops = nil
}

// Enabled reports whether the recorder is accumulating accesses.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Record appends one access to the trace.
func (r *Recorder) Record(k Kind, addr int64) {
	if r == nil || !r.enabled {
		return
	}
	h := r.hash
	h ^= uint64(k)
	h *= fnvPrime
	x := uint64(addr)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	r.hash = h
	r.n++
	if len(r.ops) < r.keep {
		r.ops = append(r.ops, Op{k, addr})
	}
}

// Len returns the number of accesses recorded.
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Hash returns the running hash of the full trace.
func (r *Recorder) Hash() uint64 {
	if r == nil {
		return 0
	}
	return r.hash
}

// Ops returns the retained prefix of the trace.
func (r *Recorder) Ops() []Op {
	if r == nil {
		return nil
	}
	return r.ops
}

// Summary is a compact fingerprint of a trace: its length and hash. Two
// traces are (with overwhelming probability) identical iff their Summaries
// are equal, which is the property the obliviousness tests check.
type Summary struct {
	Len  int64
	Hash uint64
}

// Summarize returns the recorder's fingerprint.
func (r *Recorder) Summarize() Summary { return Summary{Len: r.Len(), Hash: r.Hash()} }

// Equal reports whether two fingerprints match.
func (s Summary) Equal(o Summary) bool { return s.Len == o.Len && s.Hash == o.Hash }

// String renders the fingerprint.
func (s Summary) String() string { return fmt.Sprintf("len=%d hash=%016x", s.Len, s.Hash) }

// FirstDivergence returns the index of the first differing retained op
// between two recorders, or -1 if their retained prefixes agree. It is a
// debugging aid for failed obliviousness tests.
func FirstDivergence(a, b *Recorder) int {
	ao, bo := a.Ops(), b.Ops()
	n := len(ao)
	if len(bo) < n {
		n = len(bo)
	}
	for i := 0; i < n; i++ {
		if ao[i] != bo[i] {
			return i
		}
	}
	if len(ao) != len(bo) {
		return n
	}
	return -1
}
