package route

import (
	"oblivext/internal/extmem"
)

// Consolidate is the data consolidation of Lemma 3: given an array A of
// blocks, produce a new array A' of exactly ceil(N/B) blocks in which every
// block is either completely full of kept elements or completely empty of
// them (at most the final block is partially full), preserving the relative
// order of kept elements. The keep predicate selects elements (the classic
// use keeps FlagMarked; the sorter engines keep FlagOccupied).
//
// The scan reads each input block once and writes each output block once
// (2·ceil(N/B) I/Os total), needs only M >= 2B, and is deterministic: the
// trace is a left-to-right scan regardless of where the kept elements are.
// Returns the output array and the number of kept elements (which only
// Alice learns — it travels in block contents, never in the trace).
//
// Kept elements are copied verbatim (all flag bits preserved); filler cells
// are zero elements.
func Consolidate(env *extmem.Env, a extmem.Array, keep func(extmem.Element) bool) (extmem.Array, int64) {
	n := a.Len()
	b := a.B()
	out := env.D.Alloc(n)
	if n == 0 {
		return out, 0
	}
	sp := env.Obs.Start("consolidate")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetPredicted(2*int64(n), -1) // Lemma 3: exactly n reads + n writes
	defer env.Obs.End(sp)

	hold := env.Cache.Buf(2 * b) // pending kept elements, always < B live + incoming B
	k := env.ScanBatch(2)
	if k > n {
		k = n
	}
	in := env.Cache.Buf(k * b)
	wbuf := env.Cache.Buf(k * b)
	wr := extmem.NewSeqWriter(out, 0, wbuf)
	pending := 0
	var kept int64
	nw := env.WorkerCount()
	kcnt := make([]int, k)

	// The scan keeps the scalar lag structure — output block i-1 is decided
	// only after input block i has been absorbed — but moves up to k blocks
	// per round trip in each direction. The still-exact total is n reads
	// and n writes (Lemma 3). Per chunk, the keep predicate and the
	// intra-block gather run in parallel (each block's kept elements are
	// compacted, stably, to its front in the private buffer); the serial
	// lag loop then absorbs the pre-gathered runs.
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, in[:(hi-lo)*b])
		parFor(nw, hi-lo, func(plo, phi int) {
			for x := plo; x < phi; x++ {
				blk := in[x*b : (x+1)*b]
				w := 0
				for t := range blk {
					if keep(blk[t]) {
						blk[w] = blk[t]
						w++
					}
				}
				kcnt[x] = w
			}
		})
		for i := lo; i < hi; i++ {
			x := i - lo
			copy(hold[pending:pending+kcnt[x]], in[x*b:x*b+kcnt[x]])
			pending += kcnt[x]
			kept += int64(kcnt[x])
			if i == 0 {
				continue
			}
			slot := wr.Next()
			if pending >= b {
				copy(slot, hold[:b])
				copy(hold, hold[b:pending])
				pending -= b
			} else {
				for t := range slot {
					slot[t] = extmem.Element{}
				}
			}
		}
	}
	// Final block: whatever remains (possibly a partial block).
	if pending > b {
		// Cannot happen: pending < B before the last read, so pending <
		// 2B, and pending >= B would have emitted a full block — unless
		// the last block pushed it over; flush the full block then the
		// remainder would be lost. Guard explicitly.
		panic("route: consolidation invariant violated")
	}
	slot := wr.Next()
	for t := range slot {
		slot[t] = extmem.Element{}
	}
	copy(slot, hold[:min(pending, b)])
	wr.Flush()

	env.Cache.Free(wbuf)
	env.Cache.Free(in)
	env.Cache.Free(hold)
	return out, kept
}
