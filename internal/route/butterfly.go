// Package route holds the data-oblivious block-routing primitives shared
// by the core algorithm pipeline and the sorter engines: the butterfly-like
// compaction/expansion network of Theorem 6 (Figure 1) and the data
// consolidation scan of Lemma 3. It sits below both internal/core and
// internal/obsort so either can route blocks without an import cycle.
package route

import (
	"fmt"

	"oblivext/internal/extmem"
	"oblivext/internal/par"
)

// parMinCells is the chunk length below which per-cell compute stays on
// the calling goroutine — spawning workers costs more than processing a
// handful of cells. It compares public chunk lengths only, so the fan-out
// decision never depends on data.
const parMinCells = 32

// parFor fans fn out over [0, n) across w workers when the range is large
// enough to amortize the spawns, inline otherwise. All I/O and all cache
// accounting stay with the caller.
func parFor(w, n int, fn func(lo, hi int)) {
	if n < parMinCells {
		w = 1
	}
	par.For(w, n, fn)
}

// This file implements Theorem 6: deterministic tight order-preserving
// compaction through the butterfly-like routing network of Figure 1, and
// its reverse (order-preserving expansion). The network has ceil(log2 n)
// levels; an occupied cell at position j labelled with leftward distance d
// routes to j − (d mod 2^{i+1}) at level i, which Lemma 5 shows is
// collision-free for valid labels. Processing the levels in groups of
// g = Θ(log(M/B)) against a private sliding window gives the windowed
// variant with O(n·log(n)/log(M/B)) I/Os; g = 1 recovers the naive
// per-level variant — the two are the E4 ablation pair.
//
// A cell here is one disk block. A cell's destination (its occupied-rank)
// and its origin are carried inside the block's elements (CellDest/Aux flag
// bits), so the adversary never sees them; the address trace of every pass
// is a fixed function of (n, B, M).

// BlockPred decides whether a block-cell counts as occupied for routing.
type BlockPred func(blk []extmem.Element) bool

// PredOccupied treats a cell as occupied if any element is occupied.
func PredOccupied(blk []extmem.Element) bool {
	for _, e := range blk {
		if e.Occupied() {
			return true
		}
	}
	return false
}

// PredFailed treats a cell as occupied if any element carries FlagFailed —
// the predicate used by the failure-sweeping step of Theorem 21.
func PredFailed(blk []extmem.Element) bool {
	for _, e := range blk {
		if e.Flags&extmem.FlagFailed != 0 {
			return true
		}
	}
	return false
}

// CompactBlocksTight performs Theorem 6's tight order-preserving compaction
// in place at block granularity: all cells satisfying pred move to a
// contiguous prefix, preserving order; other cells become empty. It returns
// the number of occupied cells (private knowledge). levelsPerPass <= 0
// chooses the largest group the cache allows; 1 gives the naive variant.
//
// Side effects: the CellDest and Aux (color) flag bits of every element are
// overwritten — CellDest with the cell's final position and Aux with its
// original position (which is exactly what ExpandBlocks needs to undo the
// compaction).
func CompactBlocksTight(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) int {
	n := a.Len()
	if n == 0 {
		return 0
	}
	sp := env.Obs.Start("butterfly-compact")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetPredicted(2*int64(n)*int64(ButterflyPassCount(n, levelsPerPass, env.MBlocks())), -1)
	defer env.Obs.End(sp)
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	nw := env.WorkerCount()

	// Labelling scan: occupied cell j gets dest = rank(j), origin = j. The
	// pass splits into a parallel predicate pass, a serial rank prefix over
	// the chunk (O(k), pure arithmetic), and a parallel stamping pass — the
	// in-cache work fans out, the chunk I/O order is exactly the serial
	// scan's.
	rank := 0
	occ := make([]bool, k)
	rk := make([]int, k)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		cnt := hi - lo
		a.ReadRange(lo, hi, buf[:cnt*b])
		parFor(nw, cnt, func(plo, phi int) {
			for x := plo; x < phi; x++ {
				occ[x] = pred(buf[x*b : (x+1)*b])
			}
		})
		for x := 0; x < cnt; x++ {
			rk[x] = rank
			if occ[x] {
				rank++
			}
		}
		parFor(nw, cnt, func(plo, phi int) {
			for x := plo; x < phi; x++ {
				blk := buf[x*b : (x+1)*b]
				for t := range blk {
					if occ[x] {
						blk[t].SetCellDest(rk[x])
						blk[t].SetAux(lo + x)
					} else {
						blk[t].SetCellDest(0)
						blk[t].SetAux(0)
					}
				}
			}
		})
		a.WriteRange(lo, hi, buf[:cnt*b])
	}
	env.Cache.Free(buf)

	routeLeft(env, a, pred, levelsPerPass)
	return rank
}

// ExpandBlocks reverses a tight compaction: every cell of the compact
// prefix satisfying pred carries a destination in its Aux bits (strictly
// increasing across the prefix); the cells are routed right so cell i ends
// at position Aux(i). Cells not reached stay empty. This is the paper's
// "use this method in reverse" remark after Theorem 6.
func ExpandBlocks(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) {
	n := a.Len()
	if n == 0 {
		return
	}
	sp := env.Obs.Start("butterfly-expand")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetPredicted(2*int64(n)*int64(ButterflyPassCount(n, levelsPerPass, env.MBlocks())), -1)
	defer env.Obs.End(sp)
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	nw := env.WorkerCount()
	// Copy each occupied cell's Aux (target) into CellDest, validating
	// monotonicity as we go: a parallel predicate/target pass, the serial
	// O(k) monotonicity check, then a parallel stamping pass.
	prev := -1
	occ := make([]bool, k)
	dest := make([]int, k)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		cnt := hi - lo
		a.ReadRange(lo, hi, buf[:cnt*b])
		parFor(nw, cnt, func(plo, phi int) {
			for x := plo; x < phi; x++ {
				blk := buf[x*b : (x+1)*b]
				occ[x] = pred(blk)
				dest[x] = blk[0].Aux()
			}
		})
		for x := 0; x < cnt; x++ {
			if !occ[x] {
				continue
			}
			if dest[x] < lo+x || dest[x] <= prev {
				panic(fmt.Sprintf("route: expansion targets not strictly increasing at cell %d (dest %d, prev %d)", lo+x, dest[x], prev))
			}
			prev = dest[x]
		}
		parFor(nw, cnt, func(plo, phi int) {
			for x := plo; x < phi; x++ {
				blk := buf[x*b : (x+1)*b]
				d := 0
				if occ[x] {
					d = dest[x]
				}
				for t := range blk {
					blk[t].SetCellDest(d)
				}
			}
		})
		a.WriteRange(lo, hi, buf[:cnt*b])
	}
	env.Cache.Free(buf)

	routeRight(env, a, pred, levelsPerPass)
}

// groupSize resolves the number of network levels to process per pass.
func groupSize(env *extmem.Env, levelsPerPass int) int {
	if levelsPerPass > 0 {
		return levelsPerPass
	}
	m := env.MBlocks()
	// Private window of 2w cells plus an I/O block: 2w+2 <= m.
	g := 0
	for w := 1; 4*w+2 <= m; w *= 2 {
		g++
	}
	if g < 1 {
		g = 1
	}
	return g
}

// windowCells returns the half-window size w = 2^g, checking the cache can
// hold 2w cells plus an I/O buffer.
func windowCells(env *extmem.Env, g int) int {
	w := 1 << g
	if (2*w+1)*env.B() > env.M {
		panic(fmt.Sprintf("route: butterfly window 2^%d cells exceeds cache (m=%d blocks)", g, env.MBlocks()))
	}
	return w
}

// routeLeft runs the compaction network: occupied cells move left to their
// CellDest. Levels are processed in ascending stride groups.
func routeLeft(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) {
	n := a.Len()
	levels := extmem.CeilLog2(n)
	g := groupSize(env, levelsPerPass)

	for i0 := 0; i0 < levels; i0 += g {
		gg := g
		if i0+gg > levels {
			gg = levels - i0
		}
		routeGroupLeft(env, a, pred, i0, gg)
	}
}

// routeGroupLeft routes one group of levels [i0, i0+gg): every occupied
// cell moves left by ((j − dest) mod S·2^gg) where S = 2^i0, which Lemma 5
// guarantees lands it on a distinct cell. Cells at distance S apart form
// independent virtual sequences (the paper's "simple shuffle that brings
// together cells that are m apart"); each is processed with a sliding
// window of 2w cells, w = 2^gg.
func routeGroupLeft(env *extmem.Env, a extmem.Array, pred BlockPred, i0, gg int) {
	n := a.Len()
	b := a.B()
	s := 1 << i0
	w := windowCells(env, gg)
	modulus := s * w

	stash := env.Cache.Buf(2 * w * b)
	live := make([]bool, 2*w)
	// Strided chunk buffer, shared between loads and write gathering (the
	// two are never in flight at once): cb cells per vectored round trip.
	cb := min(w, env.ScanBatch(1))
	io := env.Cache.Buf(cb * b)
	idx := make([]int, cb)
	nw := env.WorkerCount()
	// Per-cell stash slots are computed in parallel, the Lemma 5 collision
	// check runs serially over the O(cb) slot list (deterministic panic),
	// and the block copies into distinct slots fan back out.
	slotOf := make([]int, cb)

	for c := 0; c < s && c < n; c++ {
		lv := (n - c + s - 1) / s // virtual length of this residue class
		loaded := 0
		load := func(hi int) {
			for loaded < hi {
				cnt := min(cb, hi-loaded)
				for t := 0; t < cnt; t++ {
					idx[t] = c + (loaded+t)*s
				}
				a.ReadMany(idx[:cnt], io[:cnt*b])
				parFor(nw, cnt, func(plo, phi int) {
					for t := plo; t < phi; t++ {
						blk := io[t*b : (t+1)*b]
						slotOf[t] = -1
						if !pred(blk) {
							continue
						}
						j := idx[t]
						dist := j - blk[0].CellDest()
						if dist < 0 || dist%s != 0 {
							panic("route: butterfly invariant violated (distance not multiple of stride)")
						}
						move := dist % modulus / s
						fin := loaded + t - move
						slotOf[t] = ((fin % (2 * w)) + 2*w) % (2 * w)
					}
				})
				for t := 0; t < cnt; t++ {
					if slotOf[t] < 0 {
						continue
					}
					if live[slotOf[t]] {
						panic("route: butterfly collision (Lemma 5 violated)")
					}
					live[slotOf[t]] = true
				}
				parFor(nw, cnt, func(plo, phi int) {
					for t := plo; t < phi; t++ {
						if slotOf[t] >= 0 {
							copy(stash[slotOf[t]*b:(slotOf[t]+1)*b], io[t*b:(t+1)*b])
						}
					}
				})
				loaded += cnt
			}
		}
		for t := 0; t*w < lv; t++ {
			hi := (t + 2) * w
			if hi > lv {
				hi = lv
			}
			load(hi)
			outHi := (t + 1) * w
			if outHi > lv {
				outHi = lv
			}
			for lo := t * w; lo < outHi; lo += cb {
				chi := min(lo+cb, outHi)
				// Output cells in [lo, chi) span less than 2w virtual
				// positions, so their slots are pairwise distinct — each
				// worker touches its own stash slots and live entries.
				parFor(nw, chi-lo, func(plo, phi int) {
					for out := lo + plo; out < lo+phi; out++ {
						slot := out % (2 * w)
						dst := io[(out-lo)*b : (out-lo+1)*b]
						if live[slot] {
							copy(dst, stash[slot*b:(slot+1)*b])
							live[slot] = false
						} else {
							for i := range dst {
								dst[i] = extmem.Element{}
							}
						}
						idx[out-lo] = c + out*s
					}
				})
				a.WriteMany(idx[:chi-lo], io[:(chi-lo)*b])
			}
		}
	}
	env.Cache.Free(io)
	env.Cache.Free(stash)
}

// routeRight runs the expansion network: groups in descending stride order,
// cells moving right toward CellDest.
func routeRight(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) {
	n := a.Len()
	levels := extmem.CeilLog2(n)
	g := groupSize(env, levelsPerPass)

	// Build the same group boundaries as routeLeft, then run them in
	// reverse order.
	var starts []int
	for i0 := 0; i0 < levels; i0 += g {
		starts = append(starts, i0)
	}
	for gi := len(starts) - 1; gi >= 0; gi-- {
		i0 := starts[gi]
		gg := g
		if i0+gg > levels {
			gg = levels - i0
		}
		routeGroupRight(env, a, pred, i0, gg)
	}
}

// routeGroupRight mirrors routeGroupLeft for rightward movement: cells move
// right by ((dest − j) mod S·2^gg)·... consuming the group's distance bits;
// output chunks are produced right-to-left.
func routeGroupRight(env *extmem.Env, a extmem.Array, pred BlockPred, i0, gg int) {
	n := a.Len()
	b := a.B()
	s := 1 << i0
	w := windowCells(env, gg)
	modulus := s * w

	stash := env.Cache.Buf(2 * w * b)
	live := make([]bool, 2*w)
	// Strided chunk buffer shared between loads and write gathering, as in
	// routeGroupLeft; cells stream right-to-left here.
	cb := min(w, env.ScanBatch(1))
	io := env.Cache.Buf(cb * b)
	idx := make([]int, cb)
	nw := env.WorkerCount()
	slotOf := make([]int, cb)

	for c := 0; c < s && c < n; c++ {
		lv := (n - c + s - 1) / s
		nt := (lv + w - 1) / w // number of output chunks
		loaded := lv           // we load right-to-left: next virtual index+1
		load := func(lo int) {
			for loaded > lo {
				cnt := min(cb, loaded-lo)
				for t := 0; t < cnt; t++ {
					idx[t] = c + (loaded-1-t)*s // descending virtual order
				}
				a.ReadMany(idx[:cnt], io[:cnt*b])
				parFor(nw, cnt, func(plo, phi int) {
					for t := plo; t < phi; t++ {
						blk := io[t*b : (t+1)*b]
						slotOf[t] = -1
						if !pred(blk) {
							continue
						}
						v := loaded - 1 - t
						j := idx[t]
						// Groups run in descending stride order, so the bits below
						// this group's stride are consumed later: the invariant is
						// that all bits at or above the group have been handled,
						// i.e. the remaining distance fits inside the modulus.
						dist := blk[0].CellDest() - j
						if dist < 0 || dist >= modulus {
							panic("route: expansion invariant violated")
						}
						move := dist / s
						fin := v + move
						if fin >= lv {
							panic("route: expansion routed past array end")
						}
						slotOf[t] = fin % (2 * w)
					}
				})
				for t := 0; t < cnt; t++ {
					if slotOf[t] < 0 {
						continue
					}
					if live[slotOf[t]] {
						panic("route: expansion collision")
					}
					live[slotOf[t]] = true
				}
				parFor(nw, cnt, func(plo, phi int) {
					for t := plo; t < phi; t++ {
						if slotOf[t] >= 0 {
							copy(stash[slotOf[t]*b:(slotOf[t]+1)*b], io[t*b:(t+1)*b])
						}
					}
				})
				loaded -= cnt
			}
		}
		for t := nt - 1; t >= 0; t-- {
			lo := (t - 1) * w
			if lo < 0 {
				lo = 0
			}
			load(lo)
			hi := (t + 1) * w
			if hi > lv {
				hi = lv
			}
			for chi := hi; chi > t*w; chi -= cb {
				clo := chi - cb
				if clo < t*w {
					clo = t * w
				}
				// The out positions in [clo, chi) span less than 2w virtual
				// cells, so their slots are pairwise distinct across workers.
				parFor(nw, chi-clo, func(plo, phi int) {
					for p := plo; p < phi; p++ {
						out := chi - 1 - p // descending virtual order
						slot := out % (2 * w)
						dst := io[p*b : (p+1)*b]
						if live[slot] {
							copy(dst, stash[slot*b:(slot+1)*b])
							live[slot] = false
						} else {
							for i := range dst {
								dst[i] = extmem.Element{}
							}
						}
						idx[p] = c + out*s
					}
				})
				a.WriteMany(idx[:chi-clo], io[:(chi-clo)*b])
			}
		}
	}
	env.Cache.Free(io)
	env.Cache.Free(stash)
}

// ButterflyPassCount predicts the number of full read+write passes the
// routing makes: one labelling pass plus one per level group. E4 checks
// measured I/O against 2n times this.
func ButterflyPassCount(n, levelsPerPass, mBlocks int) int {
	levels := extmem.CeilLog2(n)
	g := levelsPerPass
	if g <= 0 {
		g = 0
		for w := 1; 4*w+2 <= mBlocks; w *= 2 {
			g++
		}
		if g < 1 {
			g = 1
		}
	}
	return 1 + (levels+g-1)/g
}
