package route

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func newEnv(blocks, b, m int, seed uint64) *extmem.Env {
	return extmem.NewEnv(blocks, b, m, seed)
}

// fillBlocks writes n blocks where block i is fully occupied iff occ[i],
// with Key = i+1 stamped through the occupied blocks' elements.
func fillBlocks(a extmem.Array, occ []bool) {
	b := a.B()
	buf := make([]extmem.Element, b)
	for i := 0; i < a.Len(); i++ {
		for t := range buf {
			buf[t] = extmem.Element{}
			if occ[i] {
				buf[t] = extmem.Element{Key: uint64(i + 1), Pos: uint64(i), Flags: extmem.FlagOccupied}
			}
		}
		a.Write(i, buf)
	}
}

// blockKeys returns, per block, the Key of its first element when occupied
// and 0 otherwise.
func blockKeys(a extmem.Array) []uint64 {
	b := a.B()
	buf := make([]extmem.Element, b)
	out := make([]uint64, a.Len())
	for i := 0; i < a.Len(); i++ {
		a.Read(i, buf)
		if buf[0].Occupied() {
			out[i] = buf[0].Key
		}
	}
	return out
}

func TestConsolidateCorrectnessAndExactIO(t *testing.T) {
	const n, b, m = 37, 4, 64
	r := rand.New(rand.NewPCG(7, 7))
	env := newEnv(n, b, m, 1)
	a := env.D.Alloc(n)

	// Scatter kept elements (FlagMarked) through the blocks.
	var want []uint64
	buf := make([]extmem.Element, b)
	for i := 0; i < n; i++ {
		for t := range buf {
			k := uint64(i*b+t) + 1
			buf[t] = extmem.Element{Key: k, Pos: uint64(i*b + t), Flags: extmem.FlagOccupied}
			if r.IntN(3) == 0 {
				buf[t].Flags |= extmem.FlagMarked
				want = append(want, k)
			}
		}
		a.Write(i, buf)
	}

	before := env.D.Stats()
	out, kept := Consolidate(env, a, extmem.Element.Marked)
	delta := env.D.Stats().Sub(before)

	if kept != int64(len(want)) {
		t.Fatalf("kept %d elements, want %d", kept, len(want))
	}
	// Lemma 3: exactly n reads and n writes.
	if delta.Reads != int64(n) || delta.Writes != int64(n) {
		t.Fatalf("consolidate I/O reads=%d writes=%d, want %d each", delta.Reads, delta.Writes, n)
	}
	// Full-or-empty blocks, kept order preserved.
	var got []uint64
	for i := 0; i < out.Len(); i++ {
		out.Read(i, buf)
		occ := 0
		for _, e := range buf {
			if e.Marked() {
				got = append(got, e.Key)
				occ++
			}
		}
		if occ != 0 && occ != b && len(got) != len(want) {
			t.Fatalf("block %d holds %d kept elements: not full-or-empty", i, occ)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read back %d kept elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("kept order broken at %d: %d != %d", i, got[i], want[i])
		}
	}
	if env.Cache.Used() != 0 {
		t.Fatalf("cache not returned: %d used", env.Cache.Used())
	}
}

func TestButterflyCompactExactIOAndOrder(t *testing.T) {
	const n, b, m = 32, 4, 64
	r := rand.New(rand.NewPCG(3, 9))
	env := newEnv(n, b, m, 2)
	a := env.D.Alloc(n)
	occ := make([]bool, n)
	var want []uint64
	for i := range occ {
		occ[i] = r.IntN(2) == 0
		if occ[i] {
			want = append(want, uint64(i+1))
		}
	}
	fillBlocks(a, occ)

	before := env.D.Stats()
	rank := CompactBlocksTight(env, a, PredOccupied, 0)
	delta := env.D.Stats().Sub(before)

	if rank != len(want) {
		t.Fatalf("rank %d, want %d occupied cells", rank, len(want))
	}
	wantIO := 2 * int64(n) * int64(ButterflyPassCount(n, 0, env.MBlocks()))
	if delta.Reads+delta.Writes != wantIO {
		t.Fatalf("butterfly I/O %d, predicted %d", delta.Reads+delta.Writes, wantIO)
	}
	keys := blockKeys(a)
	for i, k := range keys {
		if i < len(want) && k != want[i] {
			t.Fatalf("prefix cell %d holds key %d, want %d", i, k, want[i])
		}
		if i >= len(want) && k != 0 {
			t.Fatalf("cell %d past the prefix still occupied (key %d)", i, k)
		}
	}
}

func TestCompactExpandRoundTrip(t *testing.T) {
	const n, b, m = 24, 4, 64
	r := rand.New(rand.NewPCG(5, 5))
	env := newEnv(n, b, m, 3)
	a := env.D.Alloc(n)
	occ := make([]bool, n)
	for i := range occ {
		occ[i] = r.IntN(2) == 0
	}
	fillBlocks(a, occ)
	before := blockKeys(a)

	CompactBlocksTight(env, a, PredOccupied, 0)
	ExpandBlocks(env, a, PredOccupied, 0)

	after := blockKeys(a)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("cell %d: key %d before compaction, %d after expansion", i, before[i], after[i])
		}
	}
}

// traceOf records the trace of fn against a fresh env with the given
// worker count.
func traceOf(n, b, m, workers int, fill func(a extmem.Array), fn func(env *extmem.Env, a extmem.Array)) trace.Summary {
	env := newEnv(n, b, m, 4)
	env.Workers = workers
	rec := trace.NewRecorder(0)
	env.D.SetRecorder(rec)
	a := env.D.Alloc(n)
	fill(a)
	fn(env, a)
	return rec.Summarize()
}

// The routing trace must be a function of public geometry only: invariant
// under the data (which cells are occupied) and under the worker count.
func TestRouteTraceInvariance(t *testing.T) {
	const n, b, m = 32, 4, 64
	mkFill := func(seed uint64) func(a extmem.Array) {
		return func(a extmem.Array) {
			r := rand.New(rand.NewPCG(seed, seed))
			occ := make([]bool, n)
			for i := range occ {
				occ[i] = r.IntN(2) == 0
			}
			fillBlocks(a, occ)
		}
	}
	ops := map[string]func(env *extmem.Env, a extmem.Array){
		"compact": func(env *extmem.Env, a extmem.Array) {
			CompactBlocksTight(env, a, PredOccupied, 0)
		},
		"consolidate": func(env *extmem.Env, a extmem.Array) {
			Consolidate(env, a, extmem.Element.Occupied)
		},
	}
	for name, op := range ops {
		base := traceOf(n, b, m, 1, mkFill(1), op)
		for _, seed := range []uint64{2, 3} {
			if got := traceOf(n, b, m, 1, mkFill(seed), op); got != base {
				t.Errorf("%s: trace depends on data (seed %d)", name, seed)
			}
		}
		for _, w := range []int{2, 4, 8} {
			if got := traceOf(n, b, m, w, mkFill(1), op); got != base {
				t.Errorf("%s: trace depends on worker count %d", name, w)
			}
		}
	}
}

// Parallel and serial routing must also agree on the result, element for
// element.
func TestRouteWorkersMatchSerialResults(t *testing.T) {
	const n, b, m = 40, 4, 128
	run := func(workers int) []uint64 {
		env := newEnv(n, b, m, 6)
		env.Workers = workers
		a := env.D.Alloc(n)
		r := rand.New(rand.NewPCG(8, 8))
		occ := make([]bool, n)
		for i := range occ {
			occ[i] = r.IntN(3) != 0
		}
		fillBlocks(a, occ)
		CompactBlocksTight(env, a, PredOccupied, 0)
		ExpandBlocks(env, a, PredOccupied, 0)
		return blockKeys(a)
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: cell %d = %d, serial %d", w, i, got[i], serial[i])
			}
		}
	}
}
