package oblivext

import (
	"net/http/httptest"
	"sync"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// Cross-session traffic analysis: the service-mode adversary. Bob now hosts
// many namespaces on one fleet, so he sees every tenant's journal AND their
// interleaving. The defended claim (docs/THREAT_MODEL.md, "Cross-session
// traffic analysis") is that per-namespace journals give him nothing new:
// each namespace's journal is (a) independent of that tenant's input data
// and (b) bit-identical to the journal the same workload produces running
// ALONE on an otherwise idle fleet — concurrency neither perturbs a
// session's trace nor lets one session's activity show up in another's
// journal. These tests run real sessions over real HTTP against a shared
// multi-tenant fleet and compare the servers' own records.

// nsFleet spins up a K-server multi-tenant obstore fleet.
func nsFleet(t *testing.T, k, blocks, b int) (servers []*netstore.Server, urls []string) {
	t.Helper()
	for i := 0; i < k; i++ {
		srv := netstore.NewServer(extmem.NewMemStore(blocks, b), netstore.ServerOptions{
			StoreFactory: func(ns string) (extmem.BlockStore, error) {
				return extmem.NewMemStore(blocks, b), nil
			},
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
	}
	return servers, urls
}

// runServiceSession runs one complete session — upload, Sort, a few ORAM
// accesses — in namespace ns against the fleet, and returns each server's
// journal fingerprint for that namespace: the adversary's per-tenant view,
// fetched from the servers' own recorders. The session seed is fixed, so
// the view is a deterministic function of len(recs) alone — if the stack is
// oblivious and isolation holds.
func runServiceSession(t *testing.T, servers []*netstore.Server, urls []string, ns string, recs []Record) []netstore.ServerTrace {
	t.Helper()
	c, err := New(Config{
		BlockSize: 8, CacheWords: 512, Seed: 123,
		NumShards: len(urls), ShardURLs: urls, Namespace: ns,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	kv, err := c.NewORAM(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := kv.Write(i, []uint64{recs[0].Val, 0, 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if _, err := kv.Read(3 - i); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]netstore.ServerTrace, len(servers))
	for i, srv := range servers {
		sum := srv.TraceSummaryNS(ns)
		out[i] = netstore.ServerTrace{Len: sum.Len, Hash: sum.Hash}
	}
	return out
}

func sessionRecs(n int, variant uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		// Different variants have different values AND different key order.
		recs[i] = Record{Key: (uint64(i)*(variant*2+7))%1009 + 1, Val: variant * 1000}
	}
	return recs
}

func TestCrossSessionTrafficAnalysis(t *testing.T) {
	const n, shards = 128, 2

	// Solo baselines on idle fleets: namespace "alice" with input 1, then —
	// separately — "alice" with input 2, and "bob" with input 2.
	servers, urls := nsFleet(t, shards, 4096, 8)
	aliceSolo1 := runServiceSession(t, servers, urls, "alice", sessionRecs(n, 1))

	servers, urls = nsFleet(t, shards, 4096, 8)
	aliceSolo2 := runServiceSession(t, servers, urls, "alice", sessionRecs(n, 2))

	servers, urls = nsFleet(t, shards, 4096, 8)
	bobSolo := runServiceSession(t, servers, urls, "bob", sessionRecs(n, 2))

	// (a) Input independence, already at the solo stage: same namespace,
	// different data, same per-server journals.
	for i := range aliceSolo1 {
		if aliceSolo1[i] != aliceSolo2[i] {
			t.Fatalf("shard %d journal depends on input data: %+v vs %+v", i, aliceSolo1[i], aliceSolo2[i])
		}
	}

	// Concurrent run: alice (input 1) and bob (input 2) share one fresh
	// fleet, racing.
	servers, urls = nsFleet(t, shards, 4096, 8)
	var aliceConc, bobConc []netstore.ServerTrace
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		aliceConc = runServiceSession(t, servers, urls, "alice", sessionRecs(n, 1))
	}()
	go func() {
		defer wg.Done()
		bobConc = runServiceSession(t, servers, urls, "bob", sessionRecs(n, 2))
	}()
	wg.Wait()

	// (b) Concurrency doesn't widen the channel: each namespace's journal
	// under contention is bit-identical to its solo baseline. Equality is
	// per shard server — the adversary sits on each one separately.
	for i := range servers {
		if aliceConc[i] != aliceSolo1[i] {
			t.Errorf("shard %d: alice's journal changed under concurrency: %+v vs solo %+v", i, aliceConc[i], aliceSolo1[i])
		}
		if bobConc[i] != bobSolo[i] {
			t.Errorf("shard %d: bob's journal changed under concurrency: %+v vs solo %+v", i, bobConc[i], bobSolo[i])
		}
	}

	// And the journals are complete: a tenant's view is nonempty (the
	// adversary does see traffic — he just can't read anything out of it).
	for i := range servers {
		if aliceConc[i].Len == 0 || bobConc[i].Len == 0 {
			t.Fatalf("shard %d journaled nothing: alice=%d bob=%d", i, aliceConc[i].Len, bobConc[i].Len)
		}
	}
}

func TestCrossSessionMultiplexedTrafficAnalysis(t *testing.T) {
	// The same property with the multiplexed wire: both sessions' streams
	// interleave on ONE shared HTTP/2 connection per server, the starkest
	// sharing the service mode allows, and the per-namespace journals still
	// match their solo baselines exactly.
	const n = 96
	mkFleet := func() (*netstore.Server, string) {
		srv := netstore.NewServer(extmem.NewMemStore(4096, 8), netstore.ServerOptions{
			StoreFactory: func(ns string) (extmem.BlockStore, error) {
				return extmem.NewMemStore(4096, 8), nil
			},
		})
		ts := httptest.NewUnstartedServer(srv.Handler())
		netstore.ConfigureMuxServer(ts.Config)
		ts.Start()
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		return srv, ts.URL
	}
	run := func(srv *netstore.Server, url, ns string, variant uint64) netstore.ServerTrace {
		c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 9, URL: url, Namespace: ns, Multiplex: true})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		arr, err := c.Store(sessionRecs(n, variant))
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		sum := srv.TraceSummaryNS(ns)
		return netstore.ServerTrace{Len: sum.Len, Hash: sum.Hash}
	}

	srv, url := mkFleet()
	aliceSolo := run(srv, url, "alice", 1)
	srv, url = mkFleet()
	bobSolo := run(srv, url, "bob", 2)

	srv, url = mkFleet()
	var aliceConc, bobConc netstore.ServerTrace
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); aliceConc = run(srv, url, "alice", 1) }()
	go func() { defer wg.Done(); bobConc = run(srv, url, "bob", 2) }()
	wg.Wait()

	if aliceConc != aliceSolo {
		t.Errorf("alice's journal changed under multiplexed concurrency: %+v vs solo %+v", aliceConc, aliceSolo)
	}
	if bobConc != bobSolo {
		t.Errorf("bob's journal changed under multiplexed concurrency: %+v vs solo %+v", bobConc, bobSolo)
	}
}
