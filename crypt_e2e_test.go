package oblivext

import (
	"bytes"
	"crypto/x509"
	"encoding/binary"
	"encoding/pem"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// testKey is the deterministic 32-byte key the encrypted-backend tests use.
func testKey() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*13 + 1)
	}
	return key
}

// obstoreSealed spins up an in-process obstore provisioned for sealed
// blocks of b plaintext elements (the B+2 footprint an encrypted client
// needs).
func obstoreSealed(t *testing.T, blocks, b int) (*netstore.Server, *httptest.Server) {
	t.Helper()
	srv := netstore.NewServer(extmem.NewMemStore(blocks, extmem.CryptChildBlockSize(b)), netstore.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestPublicEncryptedBackends runs the full probe workload (Sort, Select,
// Mark+CompactTight) with EncryptionKey set over every backend family and
// checks three things at once: the results are correct, the client-side
// logical trace equals the unencrypted MemStore run's trace (sealing is
// invisible to the adversary's view), and the crypto byte counters moved.
func TestPublicEncryptedBackends(t *testing.T) {
	const n = 1200
	recs := mkRecords(n, 31)
	want := memTrace(t, recs) // unencrypted reference trace

	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"mem", func(t *testing.T) Config {
			return Config{BlockSize: 8, CacheWords: 512, Seed: 77, EncryptionKey: testKey()}
		}},
		{"file", func(t *testing.T) Config {
			return Config{BlockSize: 8, CacheWords: 512, Seed: 77, EncryptionKey: testKey(),
				Path: filepath.Join(t.TempDir(), "enc.dat"), StartBlocks: 8192}
		}},
		{"sharded-mixed", func(t *testing.T) Config {
			return Config{BlockSize: 8, CacheWords: 512, Seed: 77, EncryptionKey: testKey(),
				NumShards: 3, ShardPaths: []string{filepath.Join(t.TempDir(), "s0.dat"), "", ""},
				StartBlocks: 8192}
		}},
		{"http", func(t *testing.T) Config {
			_, ts := obstoreSealed(t, 4096, 8)
			return Config{BlockSize: 8, CacheWords: 512, Seed: 77, EncryptionKey: testKey(), URL: ts.URL}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg(t))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			c.EnableTrace(0)
			runProbes(t, arr)
			if got := c.TraceSummary(); got != want {
				t.Fatalf("encrypted %s trace %+v != unencrypted mem trace %+v", tc.name, got, want)
			}
			got, err := arr.Records()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("%d records back, want %d", len(got), n)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1].Key > got[i].Key {
					t.Fatalf("not sorted at %d", i)
				}
			}
			st := c.Stats()
			if st.BytesSealed == 0 || st.BytesOpened == 0 {
				t.Fatalf("crypto counters did not move: %+v", st)
			}
		})
	}
}

// TestPublicEncryptedServerAdversaryView is the PR 3 end-to-end property
// with encryption on: the journal a sealed-block obstore keeps is
// bit-identical across distinct same-size inputs — and identical to the
// journal of the same workload with encryption off (the decorator changes
// bytes, never addresses).
func TestPublicEncryptedServerAdversaryView(t *testing.T) {
	const n = 1 << 10
	run := func(recs []Record) netstore.ServerTrace {
		srv, ts := obstoreSealed(t, 4096, 8)
		c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 77, EncryptionKey: testKey(), URL: ts.URL})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		arr, err := c.Store(recs)
		if err != nil {
			t.Fatal(err)
		}
		srv.ResetTrace()
		runProbes(t, arr)
		nc, err := netstore.Dial(ts.URL, netstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		st, err := nc.FetchServerTrace()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	varied := mkRecords(n, 1)
	constant := make([]Record, n)
	for i := range constant {
		constant[i] = Record{Key: 5, Val: uint64(i)}
	}
	encA, encB := run(varied), run(constant)
	if encA.Len != encB.Len || encA.Hash != encB.Hash {
		t.Fatalf("sealed server journal depends on data: %+v vs %+v", encA, encB)
	}
	// Same workload, encryption off: the journal must be the same sequence.
	_, plain := netTrace(t, varied)
	if encA.Len != plain.Len || encA.Hash != plain.Hash {
		t.Fatalf("encryption reshaped the journal: %+v vs plaintext %+v", encA, plain)
	}
}

// sentinelRecords builds records whose key encodings are distinctive enough
// to grep for in raw server-side bytes.
func sentinelRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Key: 0xfeedface00c0ffee + uint64(i)*0x10001, Val: 0xdeadbeefd00dcafe ^ uint64(i)}
	}
	return out
}

// containsSentinel reports whether raw contains the little-endian encoding
// of any sentinel key or value.
func containsSentinel(raw []byte, recs []Record) bool {
	var buf [8]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[:], r.Key)
		if bytes.Contains(raw, buf[:]) {
			return true
		}
		binary.LittleEndian.PutUint64(buf[:], r.Val)
		if bytes.Contains(raw, buf[:]) {
			return true
		}
	}
	return false
}

// TestPublicEncryptedServerStoresNoPlaintext is the regression test for the
// gap this PR closes: a file-backed obstore serving an encrypted client
// must end up with neither its on-disk state nor its journal containing any
// plaintext Element encoding — while the identical unencrypted run is
// *required* to leak them, proving the grep finds what it looks for.
func TestPublicEncryptedServerStoresNoPlaintext(t *testing.T) {
	recs := sentinelRecords(300)
	run := func(encrypt bool) (storeBytes, journalBytes []byte) {
		dir := t.TempDir()
		b := 8
		if encrypt {
			b = extmem.CryptChildBlockSize(8)
		}
		fs, err := extmem.NewFileStore(filepath.Join(dir, "bob.dat"), 4096, b)
		if err != nil {
			t.Fatal(err)
		}
		var journal bytes.Buffer
		srv := netstore.NewServer(fs, netstore.ServerOptions{Journal: &journal})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cfg := Config{BlockSize: 8, CacheWords: 512, Seed: 9, URL: ts.URL}
		if encrypt {
			cfg.EncryptionKey = testKey()
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		arr, err := c.Store(recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "bob.dat"))
		if err != nil {
			t.Fatal(err)
		}
		return raw, journal.Bytes()
	}

	plainStore, _ := run(false)
	if !containsSentinel(plainStore, recs) {
		t.Fatal("control failed: unencrypted server file does not contain the sentinels the grep looks for")
	}
	encStore, encJournal := run(true)
	if containsSentinel(encStore, recs) {
		t.Fatal("encrypted server's on-disk state contains a plaintext Element encoding")
	}
	if containsSentinel(encJournal, recs) {
		t.Fatal("server journal contains a plaintext Element encoding")
	}
	if len(encJournal) == 0 {
		t.Fatal("journal empty: the no-plaintext check checked nothing")
	}
}

// TestPublicEncryptedTamperFailsLoudly flips one ciphertext byte in the
// server's backing file and requires the client's next read of that block
// to abort with an authentication failure rather than hand the algorithms
// attacker-controlled plaintext.
func TestPublicEncryptedTamperFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bob.dat")
	fs, err := extmem.NewFileStore(path, 1024, extmem.CryptChildBlockSize(8))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(netstore.NewServer(fs, netstore.ServerOptions{}).Handler())
	defer ts.Close()
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 4, EncryptionKey: testKey(), URL: ts.URL,
		NetRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(mkRecords(100, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext byte of the array's first block, behind Alice's back.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[extmem.ElementBytes+20] ^= 1 // inside block 0's ciphertext region (past the 16-byte IV)
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reading a tampered block did not abort")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "authentication failed") {
			t.Fatalf("abort does not name the cause: %v", msg)
		}
	}()
	_, _ = arr.Records()
}

// writeCertPEM writes an httptest TLS server's certificate to a PEM file,
// standing in for the out-of-band CA distribution a real deployment does.
func writeCertPEM(t *testing.T, cert *x509.Certificate) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ca.pem")
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPublicNetworkTLSAuth is the acceptance scenario end to end: an
// obstore behind TLS with bearer-token auth, an encrypted client, the full
// probe workload — plus the rejection paths (wrong token, missing token,
// untrusted certificate).
func TestPublicNetworkTLSAuth(t *testing.T) {
	const token = "test-shared-secret"
	srv := netstore.NewServer(extmem.NewMemStore(4096, extmem.CryptChildBlockSize(8)),
		netstore.ServerOptions{AuthToken: token})
	ts := httptest.NewTLSServer(srv.Handler())
	defer ts.Close()
	caPath := writeCertPEM(t, ts.Certificate())

	cfg := Config{BlockSize: 8, CacheWords: 512, Seed: 15, EncryptionKey: testKey(),
		URL: ts.URL, TLSRootCA: caPath, AuthToken: token, NetRetries: -1}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(mkRecords(800, 5))
	if err != nil {
		t.Fatal(err)
	}
	runProbes(t, arr)
	got, err := arr.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}

	// Wrong token: rejected at dial with a permanent 401, no retries burned.
	bad := cfg
	bad.AuthToken = "wrong"
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong token not rejected with 401: %v", err)
	}
	// Missing token: same.
	bad.AuthToken = ""
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("missing token not rejected with 401: %v", err)
	}
	// Untrusted certificate: the dial must fail TLS verification.
	bad = cfg
	bad.TLSRootCA = ""
	if _, err := New(bad); err == nil {
		t.Fatal("self-signed server accepted without its CA")
	}
}
